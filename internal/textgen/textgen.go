// Package textgen synthesizes the text corpora behind the Cora-like
// and SpotSigs-like datasets: a deterministic pseudo-English
// vocabulary, Zipf-weighted word sampling, article composition, and the
// perturbation operators (typos, drops, substitutions, abbreviations)
// that turn one base document into a cluster of near-duplicates.
package textgen

import (
	"strings"

	"github.com/topk-er/adalsh/internal/xhash"
)

// Stopwords are the high-frequency function words interleaved into
// generated articles. They double as the spot-signature antecedents
// (the SpotSigs construction anchors signatures at stopwords).
var Stopwords = []string{
	"the", "a", "an", "is", "was", "are", "were", "of", "to", "in",
	"on", "for", "with", "that", "this", "it", "as", "at", "by", "from",
}

var (
	onsets  = []string{"b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl", "pr", "r", "s", "sh", "sl", "st", "t", "th", "tr", "v", "w", "z"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou"}
	codas   = []string{"", "", "l", "m", "n", "nd", "r", "rt", "s", "st", "t", "ck", "ng"}
	letters = "abcdefghijklmnopqrstuvwxyz"
)

// Vocabulary is a fixed set of pseudo-words with Zipf sampling weights.
type Vocabulary struct {
	words   []string
	cumProb []float64
}

// NewVocabulary generates n distinct pseudo-words deterministically
// from the seed, with Zipf(1.0) sampling weights over a random word
// order (so frequent words differ across vocabularies).
func NewVocabulary(n int, seed uint64) *Vocabulary {
	rng := xhash.NewRNG(seed)
	seen := make(map[string]bool, n)
	words := make([]string, 0, n)
	for len(words) < n {
		w := pseudoWord(rng)
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	v := &Vocabulary{words: words, cumProb: make([]float64, n)}
	total := 0.0
	for i := range v.cumProb {
		total += 1 / float64(i+1)
		v.cumProb[i] = total
	}
	for i := range v.cumProb {
		v.cumProb[i] /= total
	}
	return v
}

// pseudoWord draws a 2-3 syllable word.
func pseudoWord(rng *xhash.RNG) string {
	var sb strings.Builder
	syllables := 2 + rng.Intn(2)
	for s := 0; s < syllables; s++ {
		sb.WriteString(onsets[rng.Intn(len(onsets))])
		sb.WriteString(nuclei[rng.Intn(len(nuclei))])
		sb.WriteString(codas[rng.Intn(len(codas))])
	}
	return sb.String()
}

// Len reports the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.words) }

// Word returns word i.
func (v *Vocabulary) Word(i int) string { return v.words[i] }

// Sample draws a Zipf-weighted word.
func (v *Vocabulary) Sample(rng *xhash.RNG) string {
	u := rng.Float64()
	lo, hi := 0, len(v.cumProb)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.cumProb[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v.words[lo]
}

// SampleUniform draws a uniform word (used for distinctive content like
// titles, where Zipf head words would blur entities together).
func (v *Vocabulary) SampleUniform(rng *xhash.RNG) string {
	return v.words[rng.Intn(len(v.words))]
}

// Article composes a document of roughly n content words, interleaving
// stopwords with probability stopRate so spot signatures have anchors.
func (v *Vocabulary) Article(rng *xhash.RNG, n int, stopRate float64) []string {
	doc := make([]string, 0, n+n/2)
	for len(doc) < n {
		if rng.Float64() < stopRate {
			doc = append(doc, Stopwords[rng.Intn(len(Stopwords))])
		}
		doc = append(doc, v.Sample(rng))
	}
	return doc
}

// Words composes a sequence of uniformly drawn distinct-ish words
// (titles, author-ish tokens).
func (v *Vocabulary) Words(rng *xhash.RNG, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v.SampleUniform(rng)
	}
	return out
}

// Typo corrupts one character of the word (substitution). Words of
// length <= 1 are returned unchanged.
func Typo(rng *xhash.RNG, w string) string {
	if len(w) <= 1 {
		return w
	}
	b := []byte(w)
	b[rng.Intn(len(b))] = letters[rng.Intn(len(letters))]
	return string(b)
}

// PerturbWords returns a copy of words where each word is independently
// dropped with probability pDrop and typo-corrupted with probability
// pTypo.
func PerturbWords(rng *xhash.RNG, words []string, pDrop, pTypo float64) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if rng.Float64() < pDrop {
			continue
		}
		if rng.Float64() < pTypo {
			w = Typo(rng, w)
		}
		out = append(out, w)
	}
	return out
}

// EditArticle derives a near-duplicate of doc, the SpotSigs-style
// process: delete a contiguous chunk (fraction chunk of the document)
// with probability pChunk, then apply per-word substitution noise
// pSub from the vocabulary, and append extra boilerplate words.
func (v *Vocabulary) EditArticle(rng *xhash.RNG, doc []string, pChunk, chunk, pSub float64, boiler int) []string {
	out := make([]string, 0, len(doc)+boiler)
	out = append(out, doc...)
	if rng.Float64() < pChunk && len(out) > 10 {
		sz := int(float64(len(out)) * chunk)
		if sz < 1 {
			sz = 1
		}
		start := rng.Intn(len(out) - sz)
		out = append(out[:start], out[start+sz:]...)
	}
	for i := range out {
		if rng.Float64() < pSub {
			out[i] = v.Sample(rng)
		}
	}
	for i := 0; i < boiler; i++ {
		if rng.Float64() < 0.3 {
			out = append(out, Stopwords[rng.Intn(len(Stopwords))])
		}
		out = append(out, v.Sample(rng))
	}
	return out
}
