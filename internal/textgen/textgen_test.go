package textgen

import (
	"testing"

	"github.com/topk-er/adalsh/internal/xhash"
)

func TestVocabularyDistinctWords(t *testing.T) {
	v := NewVocabulary(500, 1)
	if v.Len() != 500 {
		t.Fatalf("len = %d", v.Len())
	}
	seen := make(map[string]bool)
	for i := 0; i < v.Len(); i++ {
		w := v.Word(i)
		if w == "" || seen[w] {
			t.Fatalf("word %d = %q duplicate or empty", i, w)
		}
		seen[w] = true
	}
}

func TestVocabularyDeterministic(t *testing.T) {
	a := NewVocabulary(100, 9)
	b := NewVocabulary(100, 9)
	for i := 0; i < 100; i++ {
		if a.Word(i) != b.Word(i) {
			t.Fatalf("same-seed vocabularies differ at %d", i)
		}
	}
}

func TestSampleZipfSkew(t *testing.T) {
	v := NewVocabulary(1000, 3)
	rng := xhash.NewRNG(5)
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[v.Sample(rng)]++
	}
	// The most frequent word should be far above uniform (n/1000 = 20).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Errorf("head word count %d; sampling not Zipf-skewed", max)
	}
}

func TestArticleComposition(t *testing.T) {
	v := NewVocabulary(1000, 7)
	rng := xhash.NewRNG(1)
	doc := v.Article(rng, 200, 0.3)
	if len(doc) < 200 {
		t.Fatalf("article has %d words, want >= 200", len(doc))
	}
	stops := 0
	stopSet := make(map[string]bool)
	for _, s := range Stopwords {
		stopSet[s] = true
	}
	for _, w := range doc {
		if stopSet[w] {
			stops++
		}
	}
	if stops == 0 {
		t.Error("article contains no stopwords; spot signatures would be empty")
	}
}

func TestTypo(t *testing.T) {
	rng := xhash.NewRNG(2)
	if Typo(rng, "x") != "x" {
		t.Error("single-char word should be unchanged")
	}
	w := "abcdef"
	changed := 0
	for i := 0; i < 50; i++ {
		got := Typo(rng, w)
		if len(got) != len(w) {
			t.Fatalf("typo changed length: %q", got)
		}
		if got != w {
			changed++
		}
	}
	if changed == 0 {
		t.Error("typo never changed the word")
	}
}

func TestPerturbWords(t *testing.T) {
	rng := xhash.NewRNG(3)
	words := make([]string, 1000)
	for i := range words {
		words[i] = "word"
	}
	out := PerturbWords(rng, words, 0.2, 0)
	if len(out) < 700 || len(out) > 900 {
		t.Errorf("dropped to %d of 1000 with pDrop=0.2", len(out))
	}
	// pDrop 0, pTypo 0: identity.
	same := PerturbWords(rng, []string{"a", "b"}, 0, 0)
	if len(same) != 2 || same[0] != "a" || same[1] != "b" {
		t.Errorf("identity perturbation changed input: %v", same)
	}
}

func TestEditArticle(t *testing.T) {
	v := NewVocabulary(500, 11)
	rng := xhash.NewRNG(4)
	doc := v.Article(rng, 300, 0.3)
	// Always-chunk with 20% removal plus 10 boilerplate words.
	out := v.EditArticle(rng, doc, 1.0, 0.2, 0, 10)
	if len(out) >= len(doc)+10 {
		t.Errorf("chunk deletion did not shrink: %d vs %d", len(out), len(doc))
	}
	if len(out) < len(doc)/2 {
		t.Errorf("edit destroyed the article: %d of %d words", len(out), len(doc))
	}
	// The original is never mutated.
	doc2 := v.Article(xhash.NewRNG(4), 300, 0.3)
	_ = doc2
	before := append([]string(nil), doc...)
	v.EditArticle(rng, doc, 1.0, 0.3, 0.5, 5)
	for i := range doc {
		if doc[i] != before[i] {
			t.Fatal("EditArticle mutated its input")
		}
	}
}

func TestSampleUniformInRange(t *testing.T) {
	v := NewVocabulary(50, 13)
	rng := xhash.NewRNG(6)
	for i := 0; i < 100; i++ {
		w := v.SampleUniform(rng)
		found := false
		for j := 0; j < v.Len(); j++ {
			if v.Word(j) == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled word %q not in vocabulary", w)
		}
	}
}
