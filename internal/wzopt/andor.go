package wzopt

import (
	"errors"
	"fmt"
	"math"
)

// andGridN is the per-axis resolution of the double integral in the
// AND-rule objective (Program 4). 96x96 keeps a solve under a few
// milliseconds per candidate set while staying well within the
// accuracy needed to rank candidates.
const andGridN = 96

// AndProblem is a two-field instance of Programs 4-6 (Appendix C.1):
// pick w functions of field 1 and u functions of field 2 per table, and
// z tables, with (w+u)*z = budget, so that pairs satisfying BOTH field
// thresholds collide with probability >= 1-eps.
type AndProblem struct {
	// P1, P2 are the base collision probabilities of the two fields.
	P1, P2 func(x float64) float64
	// DThr1, DThr2 are the per-field distance thresholds.
	DThr1, DThr2 float64
	// Epsilon is the threshold-constraint slack.
	Epsilon float64
	// Budget is the total number of hash functions, (w+u)*z.
	Budget int
	// MinW, MinU, MinZ enforce sequence monotonicity (Appendix C.1's
	// w' >= w, u' >= u constraints).
	MinW, MinU, MinZ int
}

// AndScheme is a solved AND-rule allocation: z tables, each formed from
// w field-1 functions and u field-2 functions.
type AndScheme struct {
	W, U, Z   int
	Budget    int
	Objective float64
}

// String implements fmt.Stringer.
func (s AndScheme) String() string {
	return fmt.Sprintf("(w=%d,u=%d,z=%d)", s.W, s.U, s.Z)
}

// Prob returns the scheme's collision probability for a pair with base
// collision probabilities p1 and p2 on the two fields.
func (s AndScheme) Prob(p1, p2 float64) float64 {
	return 1 - math.Pow(1-math.Pow(p1, float64(s.W))*math.Pow(p2, float64(s.U)), float64(s.Z))
}

// SolveAnd finds the feasible AND scheme minimizing the Program 4
// double integral. The search iterates over divisors z of the budget,
// prunes each (w, u = budget/z - w) pair with the O(1) threshold
// constraint, and evaluates the double integral only for feasible
// candidates.
func SolveAnd(pr AndProblem) (AndScheme, error) {
	if pr.Budget < 2 {
		return AndScheme{}, fmt.Errorf("wzopt: AND budget %d < 2", pr.Budget)
	}
	g1 := andProbGrid(pr.P1)
	g2 := andProbGrid(pr.P2)
	pt1, pt2 := pr.P1(pr.DThr1), pr.P2(pr.DThr2)

	best := AndScheme{}
	bestObj := math.Inf(1)
	found := false
	for z := max(1, pr.MinZ); z <= pr.Budget/2; z++ {
		if pr.Budget%z != 0 {
			continue
		}
		total := pr.Budget / z
		for w := max(1, pr.MinW); w < total; w++ {
			u := total - w
			if u < max(1, pr.MinU) {
				break
			}
			cand := AndScheme{W: w, U: u, Z: z, Budget: pr.Budget}
			if cand.Prob(pt1, pt2) < 1-pr.Epsilon {
				continue
			}
			cand.Objective = andObjective(g1, g2, cand)
			if cand.Objective < bestObj {
				best, bestObj, found = cand, cand.Objective, true
			}
		}
	}
	if !found {
		return AndScheme{}, fmt.Errorf("%w: AND budget=%d eps=%g", ErrInfeasible, pr.Budget, pr.Epsilon)
	}
	return best, nil
}

// SolveAndRelaxed behaves like SolveAnd but falls back to the candidate
// maximizing the threshold-point collision probability when the
// constraint is infeasible within the budget.
func SolveAndRelaxed(pr AndProblem) (AndScheme, error) {
	if s, err := SolveAnd(pr); err == nil {
		return s, nil
	} else if !errors.Is(err, ErrInfeasible) {
		return AndScheme{}, err
	}
	pt1, pt2 := pr.P1(pr.DThr1), pr.P2(pr.DThr2)
	best := AndScheme{}
	bestProb := -1.0
	found := false
	for z := max(1, pr.MinZ); z <= pr.Budget/2; z++ {
		if pr.Budget%z != 0 {
			continue
		}
		total := pr.Budget / z
		for w := max(1, pr.MinW); w < total; w++ {
			u := total - w
			if u < max(1, pr.MinU) {
				break
			}
			cand := AndScheme{W: w, U: u, Z: z, Budget: pr.Budget}
			if prob := cand.Prob(pt1, pt2); prob > bestProb {
				best, bestProb, found = cand, prob, true
			}
		}
	}
	if !found {
		return AndScheme{}, fmt.Errorf("%w: AND budget=%d minW=%d minU=%d minZ=%d (relaxed)",
			ErrInfeasible, pr.Budget, pr.MinW, pr.MinU, pr.MinZ)
	}
	return best, nil
}

func andProbGrid(p func(float64) float64) []float64 {
	g := make([]float64, andGridN+1)
	for i := range g {
		g[i] = p(float64(i) / andGridN)
	}
	return g
}

// andObjective evaluates the Program 4 double integral with a 2-D
// trapezoid rule over the precomputed per-axis probability grids.
func andObjective(g1, g2 []float64, s AndScheme) float64 {
	// Precompute p^w and p^u rows to keep the inner loop pow-free.
	a := make([]float64, len(g1))
	for i, p := range g1 {
		a[i] = math.Pow(p, float64(s.W))
	}
	b := make([]float64, len(g2))
	for j, p := range g2 {
		b[j] = math.Pow(p, float64(s.U))
	}
	zf := float64(s.Z)
	sum := 0.0
	for i := range a {
		wi := 1.0
		if i == 0 || i == len(a)-1 {
			wi = 0.5
		}
		rowSum := 0.0
		for j := range b {
			wj := 1.0
			if j == 0 || j == len(b)-1 {
				wj = 0.5
			}
			rowSum += wj * (1 - math.Pow(1-a[i]*b[j], zf))
		}
		sum += wi * rowSum
	}
	return sum / (andGridN * andGridN)
}

// OrProblem is a two-field instance of Programs 7-10 (Appendix C.2):
// dedicate z tables of w functions to field 1 and v tables of u
// functions to field 2, with w*z + u*v = budget, such that EACH field's
// sub-scheme alone satisfies its threshold constraint.
type OrProblem struct {
	P1, P2       func(x float64) float64
	DThr1, DThr2 float64
	Epsilon      float64
	Budget       int
	// Minimum sub-scheme parameters for sequence monotonicity.
	MinW, MinZ, MinU, MinV int
}

// OrScheme is a solved OR-rule allocation.
type OrScheme struct {
	// Field1 is the (w, z) sub-scheme on field 1, Field2 the (u, v)
	// sub-scheme on field 2.
	Field1, Field2 Scheme
	Budget         int
	Objective      float64
}

// String implements fmt.Stringer.
func (s OrScheme) String() string {
	return fmt.Sprintf("or[%s | %s]", s.Field1, s.Field2)
}

// Prob returns the scheme collision probability for base probabilities
// p1, p2 on the two fields.
func (s OrScheme) Prob(p1, p2 float64) float64 {
	return 1 - (1-s.Field1.Prob(p1))*(1-s.Field2.Prob(p2))
}

// SolveOr finds the OR scheme minimizing the Program 7 objective.
//
// The double-integral objective factorizes: with g_i the per-field
// non-collision probability curve, the objective equals
// 1 - Integral(g1)*Integral(g2), and Integral(g_i) = 1 - O_i where O_i
// is field i's single-field Program 1 objective. SolveOr therefore
// searches over budget splits and solves two single-field programs per
// split, which is exact and far cheaper than a four-parameter scan.
func SolveOr(pr OrProblem) (OrScheme, error) {
	if pr.Budget < 2 {
		return OrScheme{}, fmt.Errorf("wzopt: OR budget %d < 2", pr.Budget)
	}
	// Budget splits to try: all would be O(budget) solves; instead step
	// so that at most 256 splits are examined, which brackets the
	// optimum to well under 1% of the budget.
	step := pr.Budget / 256
	if step < 1 {
		step = 1
	}
	best := OrScheme{}
	bestObj := math.Inf(1)
	found := false
	for b1 := step; b1 < pr.Budget; b1 += step {
		s1, err1 := Solve(Problem{P: pr.P1, DThr: pr.DThr1, Epsilon: pr.Epsilon, Budget: b1, MinW: pr.MinW, MinZ: pr.MinZ})
		if err1 != nil {
			continue
		}
		s2, err2 := Solve(Problem{P: pr.P2, DThr: pr.DThr2, Epsilon: pr.Epsilon, Budget: pr.Budget - b1, MinW: pr.MinU, MinZ: pr.MinV})
		if err2 != nil {
			continue
		}
		// Objective = 1 - (1-O1)(1-O2).
		obj := 1 - (1-s1.Objective)*(1-s2.Objective)
		if obj < bestObj {
			best = OrScheme{Field1: s1, Field2: s2, Budget: pr.Budget, Objective: obj}
			bestObj = obj
			found = true
		}
	}
	if !found {
		return OrScheme{}, fmt.Errorf("%w: OR budget=%d eps=%g", ErrInfeasible, pr.Budget, pr.Epsilon)
	}
	return best, nil
}
