package wzopt

import (
	"errors"
	"math"
	"testing"
)

func TestSolveAndSatisfiesConstraints(t *testing.T) {
	pr := AndProblem{
		P1: linP, P2: linP,
		DThr1: 0.3, DThr2: 0.8,
		Epsilon: 0.001, Budget: 320,
	}
	s, err := SolveAnd(pr)
	if err != nil {
		t.Fatal(err)
	}
	if (s.W+s.U)*s.Z != pr.Budget {
		t.Errorf("budget violated: %v", s)
	}
	if prob := s.Prob(linP(pr.DThr1), linP(pr.DThr2)); prob < 1-pr.Epsilon {
		t.Errorf("threshold prob %v < %v", prob, 1-pr.Epsilon)
	}
}

func TestSolveAndOptimalAmongFeasible(t *testing.T) {
	pr := AndProblem{
		P1: linP, P2: linP,
		DThr1: 0.2, DThr2: 0.5,
		Epsilon: 0.01, Budget: 64,
	}
	best, err := SolveAnd(pr)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := linP(pr.DThr1), linP(pr.DThr2)
	for z := 1; z <= pr.Budget/2; z++ {
		if pr.Budget%z != 0 {
			continue
		}
		total := pr.Budget / z
		for w := 1; w < total; w++ {
			cand := AndScheme{W: w, U: total - w, Z: z, Budget: pr.Budget}
			if cand.Prob(p1, p2) < 1-pr.Epsilon {
				continue
			}
			if obj := fineAndObjective(cand); obj < fineAndObjective(best)-1e-9 {
				t.Errorf("candidate %v (obj %.6f) beats solver's %v (obj %.6f)",
					cand, obj, best, fineAndObjective(best))
			}
		}
	}
}

func fineAndObjective(s AndScheme) float64 {
	const n = 128
	sum := 0.0
	for i := 0; i <= n; i++ {
		wi := 1.0
		if i == 0 || i == n {
			wi = 0.5
		}
		for j := 0; j <= n; j++ {
			wj := 1.0
			if j == 0 || j == n {
				wj = 0.5
			}
			sum += wi * wj * s.Prob(linP(float64(i)/n), linP(float64(j)/n))
		}
	}
	return sum / (n * n)
}

func TestSolveAndMinConstraints(t *testing.T) {
	s, err := SolveAnd(AndProblem{
		P1: linP, P2: linP, DThr1: 0.3, DThr2: 0.5,
		Epsilon: 0.001, Budget: 640,
		MinW: 3, MinU: 2, MinZ: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.W < 3 || s.U < 2 || s.Z < 8 {
		t.Errorf("solution %v violates min constraints", s)
	}
}

func TestSolveAndRelaxedFallback(t *testing.T) {
	pr := AndProblem{
		P1: linP, P2: linP, DThr1: 0.9, DThr2: 0.9,
		Epsilon: 1e-9, Budget: 4,
	}
	if _, err := SolveAnd(pr); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	s, err := SolveAndRelaxed(pr)
	if err != nil {
		t.Fatal(err)
	}
	if (s.W+s.U)*s.Z != pr.Budget {
		t.Errorf("relaxed solution off budget: %v", s)
	}
}

func TestSolveOrSeparability(t *testing.T) {
	pr := OrProblem{
		P1: linP, P2: linP,
		DThr1: 0.2, DThr2: 0.4,
		Epsilon: 0.001, Budget: 200,
	}
	s, err := SolveOr(pr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Field1.Budget + s.Field2.Budget; got > pr.Budget {
		t.Errorf("sub-budgets sum to %d > %d", got, pr.Budget)
	}
	// Each sub-scheme independently satisfies its field's constraint.
	if p := s.Field1.Prob(linP(pr.DThr1)); p < 1-pr.Epsilon {
		t.Errorf("field1 constraint violated: %v", p)
	}
	if p := s.Field2.Prob(linP(pr.DThr2)); p < 1-pr.Epsilon {
		t.Errorf("field2 constraint violated: %v", p)
	}
	// The factorized objective equals the direct double integral.
	direct := fineOrObjective(s)
	if math.Abs(direct-s.Objective) > 5e-3 {
		t.Errorf("objective mismatch: solver %.5f, direct %.5f", s.Objective, direct)
	}
}

func fineOrObjective(s OrScheme) float64 {
	const n = 256
	sum := 0.0
	for i := 0; i <= n; i++ {
		wi := 1.0
		if i == 0 || i == n {
			wi = 0.5
		}
		for j := 0; j <= n; j++ {
			wj := 1.0
			if j == 0 || j == n {
				wj = 0.5
			}
			sum += wi * wj * s.Prob(linP(float64(i)/n), linP(float64(j)/n))
		}
	}
	return sum / (n * n)
}

func TestSolveOrErrors(t *testing.T) {
	if _, err := SolveOr(OrProblem{P1: linP, P2: linP, Budget: 1}); err == nil {
		t.Error("accepted budget 1")
	}
	if _, err := SolveAnd(AndProblem{P1: linP, P2: linP, Budget: 1}); err == nil {
		t.Error("accepted AND budget 1")
	}
}
