package wzopt

import (
	"fmt"
	"math"
)

// FieldSpec describes one hashing channel of an N-way compound rule:
// its base collision-probability curve and its distance threshold.
type FieldSpec struct {
	P    func(x float64) float64
	DThr float64
}

// AndNProblem generalizes Programs 4-6 to N fields (the "combining
// rules" setting of Appendix C.4): z tables, each concatenating w_i
// functions of field i, with (sum w_i) * z = budget, such that pairs
// within every field threshold collide with probability >= 1 - eps.
type AndNProblem struct {
	Fields  []FieldSpec
	Epsilon float64
	Budget  int
	// MinW[i] and MinZ enforce sequence monotonicity.
	MinW []int
	MinZ int
}

// AndNScheme is a solved N-way AND allocation.
type AndNScheme struct {
	// W[i] is the number of field-i functions per table.
	W         []int
	Z         int
	Budget    int
	Objective float64
}

// String implements fmt.Stringer.
func (s AndNScheme) String() string {
	return fmt.Sprintf("andN(w=%v,z=%d)", s.W, s.Z)
}

// Prob returns the collision probability for a pair with the given
// per-field base probabilities: 1 - (1 - prod p_i^w_i)^z.
func (s AndNScheme) Prob(ps []float64) float64 {
	prod := 1.0
	for i, p := range ps {
		prod *= math.Pow(p, float64(s.W[i]))
	}
	return 1 - math.Pow(1-prod, float64(s.Z))
}

// haltonPoints generates deterministic low-discrepancy sample points in
// [0,1]^dim for the Monte Carlo objective (van der Corput sequences in
// coprime bases).
func haltonPoints(n, dim int) [][]float64 {
	primes := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if dim > len(primes) {
		panic("wzopt: too many fields for the Halton objective")
	}
	pts := make([][]float64, n)
	flat := make([]float64, n*dim)
	for i := range pts {
		pts[i], flat = flat[:dim], flat[dim:]
		for d := 0; d < dim; d++ {
			base := primes[d]
			f := 1.0
			x := 0.0
			idx := i + 1
			for idx > 0 {
				f /= float64(base)
				x += f * float64(idx%base)
				idx /= base
			}
			pts[i][d] = x
		}
	}
	return pts
}

// andNObjective estimates the N-dimensional collision-probability
// integral over precomputed base-probability samples.
func andNObjective(samples [][]float64, s AndNScheme) float64 {
	sum := 0.0
	zf := float64(s.Z)
	for _, ps := range samples {
		prod := 1.0
		for i, p := range ps {
			prod *= math.Pow(p, float64(s.W[i]))
		}
		sum += 1 - math.Pow(1-prod, zf)
	}
	return sum / float64(len(samples))
}

// SolveAndN finds a good N-way AND scheme: for each divisor z of the
// budget it starts from a feasibility-driven allocation of the per-
// table function budget across fields, then hill-climbs by moving one
// function at a time between fields while the threshold constraint
// holds. For N = 2 prefer SolveAnd, which scans the space exactly.
func SolveAndN(pr AndNProblem) (AndNScheme, error) {
	n := len(pr.Fields)
	if n < 2 {
		return AndNScheme{}, fmt.Errorf("wzopt: AndN needs >= 2 fields, got %d", n)
	}
	if pr.Budget < n {
		return AndNScheme{}, fmt.Errorf("wzopt: AndN budget %d < fields %d", pr.Budget, n)
	}
	minW := pr.MinW
	if minW == nil {
		minW = make([]int, n)
	}
	if len(minW) != n {
		return AndNScheme{}, fmt.Errorf("wzopt: MinW has %d entries for %d fields", len(minW), n)
	}
	// Base-probability samples: the objective integrates the collision
	// probability over the unit cube of per-field distances.
	const nSamples = 2048
	raw := haltonPoints(nSamples, n)
	samples := make([][]float64, nSamples)
	flat := make([]float64, nSamples*n)
	for i, pt := range raw {
		samples[i], flat = flat[:n], flat[n:]
		for d, x := range pt {
			samples[i][d] = pr.Fields[d].P(x)
		}
	}
	pThr := make([]float64, n)
	for i, f := range pr.Fields {
		pThr[i] = f.P(f.DThr)
	}
	feasible := func(s AndNScheme) bool {
		if s.Z < max(1, pr.MinZ) {
			return false
		}
		for i, w := range s.W {
			if w < max(1, minW[i]) {
				return false
			}
		}
		return s.Prob(pThr) >= 1-pr.Epsilon
	}

	best := AndNScheme{}
	bestObj := math.Inf(1)
	found := false
	bestFallback := AndNScheme{}
	bestFallbackProb := -1.0
	for z := max(1, pr.MinZ); z <= pr.Budget/n; z++ {
		if pr.Budget%z != 0 {
			continue
		}
		total := pr.Budget / z
		sumMin := 0
		for _, w := range minW {
			sumMin += max(1, w)
		}
		if total < sumMin {
			continue
		}
		// Start from the minimum allocation and grow greedily: give
		// the next function to the field whose threshold-point term
		// p_i^w_i is currently the largest (that hurts the constraint
		// the least while sharpening the scheme the most).
		w := make([]int, n)
		for i := range w {
			w[i] = max(1, minW[i])
		}
		for used := sumMin; used < total; used++ {
			bestI, bestTerm := 0, -1.0
			for i := range w {
				if term := math.Pow(pThr[i], float64(w[i])); term > bestTerm {
					bestI, bestTerm = i, term
				}
			}
			w[bestI]++
		}
		cand := AndNScheme{W: append([]int(nil), w...), Z: z, Budget: pr.Budget}
		if prob := cand.Prob(pThr); prob > bestFallbackProb {
			bestFallback = cand
			bestFallbackProb = prob
		}
		if !feasible(cand) {
			continue
		}
		cand.Objective = andNObjective(samples, cand)
		// Hill-climb: try moving one function from field a to field b.
		improved := true
		for improved {
			improved = false
			for a := 0; a < n; a++ {
				if cand.W[a] <= max(1, minW[a]) {
					continue
				}
				for bI := 0; bI < n; bI++ {
					if bI == a {
						continue
					}
					next := AndNScheme{W: append([]int(nil), cand.W...), Z: cand.Z, Budget: cand.Budget}
					next.W[a]--
					next.W[bI]++
					if !feasible(next) {
						continue
					}
					next.Objective = andNObjective(samples, next)
					if next.Objective < cand.Objective-1e-12 {
						cand = next
						improved = true
					}
				}
			}
		}
		if cand.Objective < bestObj {
			best, bestObj, found = cand, cand.Objective, true
		}
	}
	if !found {
		if bestFallbackProb < 0 {
			return AndNScheme{}, fmt.Errorf("%w: AndN budget=%d", ErrInfeasible, pr.Budget)
		}
		// Relaxed fallback: the allocation with the highest threshold
		// collision probability (early sequence functions are allowed
		// to be inaccurate).
		bestFallback.Objective = andNObjective(samples, bestFallback)
		return bestFallback, nil
	}
	return best, nil
}

// OrNProblem generalizes Programs 7-10 to N fields: field i gets its
// own (w_i, z_i) sub-scheme, the sub-budgets sum to the budget, and
// every field's sub-scheme satisfies its own threshold constraint.
type OrNProblem struct {
	Fields  []FieldSpec
	Epsilon float64
	Budget  int
	// MinW[i], MinZ[i] enforce sequence monotonicity per field.
	MinW, MinZ []int
}

// OrNScheme is a solved N-way OR allocation.
type OrNScheme struct {
	Schemes   []Scheme
	Budget    int
	Objective float64
}

// String implements fmt.Stringer.
func (s OrNScheme) String() string {
	out := "orN["
	for i, sub := range s.Schemes {
		if i > 0 {
			out += "|"
		}
		out += sub.String()
	}
	return out + "]"
}

// Prob returns the scheme collision probability for per-field base
// probabilities ps.
func (s OrNScheme) Prob(ps []float64) float64 {
	q := 1.0
	for i, sub := range s.Schemes {
		q *= 1 - sub.Prob(ps[i])
	}
	return 1 - q
}

// SolveOrN allocates the budget across the N fields by dynamic
// programming over budget quanta, exploiting the same objective
// factorization as SolveOr: the total objective is one minus the
// product of the per-field non-collision integrals, so each field's
// contribution depends only on its own sub-budget.
func SolveOrN(pr OrNProblem) (OrNScheme, error) {
	n := len(pr.Fields)
	if n < 2 {
		return OrNScheme{}, fmt.Errorf("wzopt: OrN needs >= 2 fields, got %d", n)
	}
	if pr.Budget < 2*n {
		return OrNScheme{}, fmt.Errorf("wzopt: OrN budget %d too small for %d fields", pr.Budget, n)
	}
	minW := pr.MinW
	minZ := pr.MinZ
	if minW == nil {
		minW = make([]int, n)
	}
	if minZ == nil {
		minZ = make([]int, n)
	}
	// Budget quanta: at most 64 steps keeps the DP and the per-cell
	// single-field solves cheap while bracketing the optimum closely.
	steps := 64
	if pr.Budget < steps {
		steps = pr.Budget
	}
	quantum := pr.Budget / steps

	// solve[i][q] caches the single-field solution of field i with
	// budget q*quantum; score is log(1 - objective) or -Inf.
	type cell struct {
		scheme Scheme
		score  float64
		ok     bool
	}
	solve := make([][]cell, n)
	for i := range solve {
		solve[i] = make([]cell, steps+1)
		for q := 1; q <= steps; q++ {
			b := q * quantum
			if i == n-1 && q == steps {
				// Let the last quantum absorb rounding.
				b = pr.Budget - (steps-1)*quantum
				if b < 1 {
					b = 1
				}
			}
			s, err := Solve(Problem{
				P: pr.Fields[i].P, DThr: pr.Fields[i].DThr, Epsilon: pr.Epsilon,
				Budget: b, MinW: minW[i], MinZ: minZ[i],
			})
			if err != nil {
				continue
			}
			solve[i][q] = cell{scheme: s, score: math.Log(math.Max(1e-300, 1-s.Objective)), ok: true}
		}
	}

	// DP over fields: dp[q] = best cumulative score using q quanta,
	// with choice tracking for reconstruction.
	const negInf = math.MaxFloat64
	dp := make([]float64, steps+1)
	choice := make([][]int, n)
	for i := range choice {
		choice[i] = make([]int, steps+1)
		for q := range choice[i] {
			choice[i][q] = -1
		}
	}
	for q := range dp {
		dp[q] = -negInf
	}
	dp[0] = 0
	for i := 0; i < n; i++ {
		next := make([]float64, steps+1)
		for q := range next {
			next[q] = -negInf
		}
		for used := 0; used <= steps; used++ {
			if dp[used] == -negInf {
				continue
			}
			for take := 1; used+take <= steps; take++ {
				c := solve[i][take]
				if !c.ok {
					continue
				}
				if sc := dp[used] + c.score; sc > next[used+take] {
					next[used+take] = sc
					choice[i][used+take] = take
				}
			}
		}
		dp = next
	}
	// Pick the best total (using at most all quanta; unused budget is
	// allowed but never optimal since more tables only help).
	bestQ, bestScore := -1, -negInf
	for q := n; q <= steps; q++ {
		if dp[q] > bestScore {
			bestQ, bestScore = q, dp[q]
		}
	}
	if bestQ < 0 {
		// Relaxed fallback for small budgets (early sequence functions
		// are allowed to be inaccurate): split the budget evenly and
		// take each field's best-effort scheme.
		out := OrNScheme{Schemes: make([]Scheme, n), Budget: pr.Budget}
		prod := 1.0
		for i := range out.Schemes {
			b := pr.Budget / n
			if i == n-1 {
				b = pr.Budget - (n-1)*(pr.Budget/n)
			}
			s, err := SolveRelaxed(Problem{
				P: pr.Fields[i].P, DThr: pr.Fields[i].DThr, Epsilon: pr.Epsilon,
				Budget: b, MinW: minW[i], MinZ: minZ[i],
			})
			if err != nil {
				return OrNScheme{}, fmt.Errorf("%w: OrN budget=%d (relaxed: %v)", ErrInfeasible, pr.Budget, err)
			}
			out.Schemes[i] = s
			prod *= 1 - s.Objective
		}
		out.Objective = 1 - prod
		return out, nil
	}
	// Reconstruct.
	out := OrNScheme{Schemes: make([]Scheme, n), Budget: pr.Budget}
	q := bestQ
	for i := n - 1; i >= 0; i-- {
		take := choice[i][q]
		if take < 0 {
			return OrNScheme{}, fmt.Errorf("wzopt: OrN reconstruction failed at field %d", i)
		}
		out.Schemes[i] = solve[i][take].scheme
		q -= take
	}
	// Objective = 1 - prod(1 - O_i).
	prod := 1.0
	for _, s := range out.Schemes {
		prod *= 1 - s.Objective
	}
	out.Objective = 1 - prod
	return out, nil
}
