package wzopt

import (
	"math"
	"testing"
)

func threeFields() []FieldSpec {
	return []FieldSpec{
		{P: linP, DThr: 0.3},
		{P: linP, DThr: 0.4},
		{P: linP, DThr: 0.5},
	}
}

func TestSolveAndNConstraints(t *testing.T) {
	pr := AndNProblem{Fields: threeFields(), Epsilon: 0.001, Budget: 960}
	s, err := SolveAndN(pr)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range s.W {
		if w < 1 {
			t.Fatalf("w = %v", s.W)
		}
		total += w
	}
	if total*s.Z != pr.Budget {
		t.Fatalf("budget: %d * %d != %d", total, s.Z, pr.Budget)
	}
	ps := make([]float64, 3)
	for i, f := range pr.Fields {
		ps[i] = f.P(f.DThr)
	}
	if prob := s.Prob(ps); prob < 1-pr.Epsilon {
		t.Fatalf("threshold prob %v", prob)
	}
}

func TestSolveAndNMatchesExactForTwoFields(t *testing.T) {
	// For N=2 the hill-climbing solver should land close to the exact
	// Programs 4-6 optimum.
	fields := []FieldSpec{{P: linP, DThr: 0.3}, {P: linP, DThr: 0.5}}
	exact, err := SolveAnd(AndProblem{
		P1: fields[0].P, P2: fields[1].P, DThr1: fields[0].DThr, DThr2: fields[1].DThr,
		Epsilon: 0.001, Budget: 320,
	})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SolveAndN(AndNProblem{Fields: fields, Epsilon: 0.001, Budget: 320})
	if err != nil {
		t.Fatal(err)
	}
	// Compare objective quality on a common fine grid.
	exactObj := fineAndObjective(exact)
	approxObj := fineAndObjective(AndScheme{W: approx.W[0], U: approx.W[1], Z: approx.Z, Budget: approx.Budget})
	if approxObj > exactObj*1.25+1e-6 {
		t.Fatalf("N-way objective %.5f much worse than exact %.5f", approxObj, exactObj)
	}
}

func TestSolveAndNMinConstraints(t *testing.T) {
	s, err := SolveAndN(AndNProblem{
		Fields: threeFields(), Epsilon: 0.001, Budget: 1920,
		MinW: []int{2, 2, 1}, MinZ: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.W[0] < 2 || s.W[1] < 2 || s.W[2] < 1 || s.Z < 4 {
		t.Fatalf("solution %v violates min constraints", s)
	}
}

func TestSolveAndNRelaxedFallback(t *testing.T) {
	// Budget too small for a strict epsilon: the solver falls back to
	// the best-effort allocation instead of failing.
	s, err := SolveAndN(AndNProblem{Fields: threeFields(), Epsilon: 1e-9, Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range s.W {
		total += w
	}
	if total*s.Z != 6 {
		t.Fatalf("fallback off budget: %v", s)
	}
}

func TestSolveAndNErrors(t *testing.T) {
	if _, err := SolveAndN(AndNProblem{Fields: threeFields()[:1], Budget: 10}); err == nil {
		t.Error("accepted one field")
	}
	if _, err := SolveAndN(AndNProblem{Fields: threeFields(), Budget: 2}); err == nil {
		t.Error("accepted budget < fields")
	}
	if _, err := SolveAndN(AndNProblem{Fields: threeFields(), Budget: 30, MinW: []int{1}}); err == nil {
		t.Error("accepted mismatched MinW")
	}
}

func TestSolveOrNConstraints(t *testing.T) {
	pr := OrNProblem{Fields: threeFields(), Epsilon: 0.001, Budget: 600}
	s, err := SolveOrN(pr)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for i, sub := range s.Schemes {
		used += sub.W*sub.Z + sub.WRem
		if p := sub.Prob(pr.Fields[i].P(pr.Fields[i].DThr)); p < 1-pr.Epsilon {
			t.Errorf("field %d constraint violated: %v", i, p)
		}
	}
	if used > pr.Budget {
		t.Fatalf("used %d > budget %d", used, pr.Budget)
	}
	// The combined probability dominates each sub-scheme's.
	ps := []float64{0.7, 0.6, 0.5}
	combined := s.Prob(ps)
	for i, sub := range s.Schemes {
		if combined < sub.Prob(ps[i])-1e-12 {
			t.Errorf("OR prob %v below field %d prob %v", combined, i, sub.Prob(ps[i]))
		}
	}
}

func TestSolveOrNMatchesTwoWay(t *testing.T) {
	fields := []FieldSpec{{P: linP, DThr: 0.2}, {P: linP, DThr: 0.4}}
	exact, err := SolveOr(OrProblem{
		P1: fields[0].P, P2: fields[1].P, DThr1: fields[0].DThr, DThr2: fields[1].DThr,
		Epsilon: 0.001, Budget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SolveOrN(OrNProblem{Fields: fields, Epsilon: 0.001, Budget: 256})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.Objective-exact.Objective) > 0.05 {
		t.Fatalf("OrN objective %.5f far from exact %.5f", approx.Objective, exact.Objective)
	}
}

func TestSolveOrNSmallBudgetFallback(t *testing.T) {
	s, err := SolveOrN(OrNProblem{Fields: threeFields(), Epsilon: 0.001, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Schemes) != 3 {
		t.Fatalf("schemes = %d", len(s.Schemes))
	}
}

func TestSolveOrNErrors(t *testing.T) {
	if _, err := SolveOrN(OrNProblem{Fields: threeFields()[:1], Budget: 100}); err == nil {
		t.Error("accepted one field")
	}
	if _, err := SolveOrN(OrNProblem{Fields: threeFields(), Budget: 3}); err == nil {
		t.Error("accepted tiny budget")
	}
}

func TestHaltonPointsInUnitCube(t *testing.T) {
	pts := haltonPoints(500, 3)
	if len(pts) != 500 {
		t.Fatalf("points = %d", len(pts))
	}
	var mean [3]float64
	for _, p := range pts {
		for d, x := range p {
			if x < 0 || x >= 1 {
				t.Fatalf("coordinate %v outside [0,1)", x)
			}
			mean[d] += x
		}
	}
	for d := range mean {
		mean[d] /= 500
		if math.Abs(mean[d]-0.5) > 0.05 {
			t.Errorf("dimension %d mean %v, want ~0.5 (low discrepancy)", d, mean[d])
		}
	}
}
