package wzopt

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// Property tests: rather than checking specific solver answers, these
// sweep families of Program 1-10 instances and assert the structural
// invariants every solution must satisfy — budget identities, threshold
// constraints, monotonicity of the collision-probability curves, and
// that relaxing the integer-divisor restriction never hurts.

// pFamilies are base collision-probability curves spanning the families
// the plans use: linear (MinHash/hyperplane), convex, and concave.
var pFamilies = []struct {
	name string
	p    func(x float64) float64
}{
	{"linear", func(x float64) float64 { return 1 - x }},
	{"convex", func(x float64) float64 { return (1 - x) * (1 - x) }},
	{"cosine", func(x float64) float64 { return math.Cos(x * math.Pi / 2) }},
}

// TestSchemeProbMonotone: for any fixed scheme, the collision
// probability 1-(1-p^w)^z (times the remainder factor) is non-decreasing
// in the base probability p; composed with any non-increasing p(x) the
// scheme's collision probability is therefore non-increasing in
// distance, which is what makes threshold constraints meaningful.
func TestSchemeProbMonotone(t *testing.T) {
	schemes := []Scheme{
		{W: 1, Z: 1}, {W: 1, Z: 64}, {W: 8, Z: 1}, {W: 4, Z: 16},
		{W: 16, Z: 8}, {W: 5, Z: 7, WRem: 3}, {W: 32, Z: 2, WRem: 1},
	}
	const steps = 400
	for _, s := range schemes {
		prev := s.Prob(0)
		if prev < -1e-12 || prev > 1+1e-12 {
			t.Fatalf("%v: Prob(0) = %v outside [0,1]", s, prev)
		}
		for i := 1; i <= steps; i++ {
			p := float64(i) / steps
			cur := s.Prob(p)
			if cur < prev-1e-12 {
				t.Fatalf("%v: Prob not monotone at p=%g: %v < %v", s, p, cur, prev)
			}
			if cur < -1e-12 || cur > 1+1e-12 {
				t.Fatalf("%v: Prob(%g) = %v outside [0,1]", s, p, cur)
			}
			prev = cur
		}
		// Endpoints: p=0 never collides (some table must fully match),
		// p=1 always collides.
		if got := s.Prob(0); got != 0 {
			t.Fatalf("%v: Prob(0) = %v, want 0", s, got)
		}
		if got := s.Prob(1); math.Abs(got-1) > 1e-12 {
			t.Fatalf("%v: Prob(1) = %v, want 1", s, got)
		}
	}
	// Distance monotonicity through each p family.
	s := Scheme{W: 6, Z: 10}
	for _, fam := range pFamilies {
		prev := s.Prob(fam.p(0))
		for i := 1; i <= steps; i++ {
			x := float64(i) / steps
			cur := s.Prob(fam.p(x))
			if cur > prev+1e-12 {
				t.Fatalf("%s: collision probability increased with distance at x=%g", fam.name, x)
			}
			prev = cur
		}
	}
}

// checkScheme asserts the Program 1-3 feasibility invariants of a
// single-field solution against its problem.
func checkScheme(t *testing.T, label string, pr Problem, s Scheme) {
	t.Helper()
	if s.W < max(1, pr.MinW) || s.Z < max(1, pr.MinZ) {
		t.Fatalf("%s: scheme %v violates MinW=%d/MinZ=%d", label, s, pr.MinW, pr.MinZ)
	}
	if s.WRem < 0 || s.WRem >= s.W {
		t.Fatalf("%s: scheme %v remainder outside [0, w)", label, s)
	}
	if s.WRem != 0 && !pr.AllowRemainder {
		t.Fatalf("%s: scheme %v has a remainder without AllowRemainder", label, s)
	}
	if got := s.W*s.Z + s.WRem; got != pr.Budget {
		t.Fatalf("%s: scheme %v uses %d functions, budget %d", label, s, got, pr.Budget)
	}
	if s.Objective < 0 || s.Objective > 1 {
		t.Fatalf("%s: objective %v outside [0,1]", label, s.Objective)
	}
}

// TestSolveOutputsFeasible sweeps Program 1-3 instances across budgets,
// thresholds, slacks and p families and asserts every solution honors
// its own constraints: budget identity, bounds, and collision
// probability at the threshold of at least 1 - epsilon.
func TestSolveOutputsFeasible(t *testing.T) {
	for _, fam := range pFamilies {
		for _, budget := range []int{1, 2, 7, 16, 60, 128, 509} {
			for _, dthr := range []float64{0.05, 0.2, 0.4, 0.6} {
				for _, eps := range []float64{0.05, 0.15, 0.4} {
					for _, rem := range []bool{false, true} {
						pr := Problem{P: fam.p, DThr: dthr, Epsilon: eps, Budget: budget, AllowRemainder: rem}
						label := fmt.Sprintf("%s/b=%d/d=%g/e=%g/rem=%v", fam.name, budget, dthr, eps, rem)
						s, err := Solve(pr)
						if err != nil {
							if !errors.Is(err, ErrInfeasible) {
								t.Fatalf("%s: %v", label, err)
							}
						} else {
							checkScheme(t, label, pr, s)
							if got := s.Prob(pr.P(pr.DThr)); got < 1-eps-1e-12 {
								t.Fatalf("%s: threshold constraint violated: Prob=%v < %v", label, got, 1-eps)
							}
						}
						// The relaxed solver must always produce a
						// budget-respecting scheme, feasible or not.
						rs, rerr := SolveRelaxed(pr)
						if rerr != nil {
							t.Fatalf("%s: SolveRelaxed: %v", label, rerr)
						}
						checkScheme(t, label+"/relaxed", pr, rs)
						if err == nil {
							// When the strict program is feasible the
							// relaxed solver must return the same optimum.
							if rs != s {
								t.Fatalf("%s: relaxed %v != strict %v on a feasible instance", label, rs, s)
							}
						}
					}
				}
			}
		}
	}
}

// TestRemainderNeverWorse: AllowRemainder strictly enlarges the
// candidate set (every integer-divisor scheme is still a candidate), so
// whenever the integer-divisor program is feasible the remainder
// extension must be feasible too, with an objective at least as small.
func TestRemainderNeverWorse(t *testing.T) {
	for _, fam := range pFamilies {
		for _, budget := range []int{6, 10, 17, 23, 60, 127, 510} {
			for _, dthr := range []float64{0.1, 0.3, 0.5} {
				for _, eps := range []float64{0.1, 0.3} {
					base := Problem{P: fam.p, DThr: dthr, Epsilon: eps, Budget: budget}
					label := fmt.Sprintf("%s/b=%d/d=%g/e=%g", fam.name, budget, dthr, eps)
					ints, ierr := Solve(base)
					ext := base
					ext.AllowRemainder = true
					rems, rerr := Solve(ext)
					if ierr == nil {
						if rerr != nil {
							t.Fatalf("%s: integer-divisor feasible but remainder extension infeasible: %v", label, rerr)
						}
						if rems.Objective > ints.Objective+1e-12 {
							t.Fatalf("%s: remainder objective %v worse than integer %v",
								label, rems.Objective, ints.Objective)
						}
					}
				}
			}
		}
	}
}

// TestSolveAndOutputsFeasible sweeps two-field Program 4-6 instances:
// every solution must satisfy (w+u)*z == budget, the per-field bounds,
// and the AND threshold constraint.
func TestSolveAndOutputsFeasible(t *testing.T) {
	for _, fam := range pFamilies {
		for _, budget := range []int{4, 12, 24, 60, 96} {
			for _, eps := range []float64{0.1, 0.3} {
				pr := AndProblem{
					P1: fam.p, P2: func(x float64) float64 { return 1 - x },
					DThr1: 0.3, DThr2: 0.2, Epsilon: eps, Budget: budget,
				}
				label := fmt.Sprintf("%s/b=%d/e=%g", fam.name, budget, eps)
				s, err := SolveAnd(pr)
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("%s: %v", label, err)
					}
					// The relaxed variant must still produce a valid
					// allocation.
					rs, rerr := SolveAndRelaxed(pr)
					if rerr != nil {
						t.Fatalf("%s: SolveAndRelaxed: %v", label, rerr)
					}
					s = rs
				} else {
					if got := s.Prob(pr.P1(pr.DThr1), pr.P2(pr.DThr2)); got < 1-eps-1e-12 {
						t.Fatalf("%s: AND threshold constraint violated: %v < %v", label, got, 1-eps)
					}
					if s.Objective < 0 || s.Objective > 1 {
						t.Fatalf("%s: objective %v outside [0,1]", label, s.Objective)
					}
				}
				if s.W < 1 || s.U < 1 || s.Z < 1 {
					t.Fatalf("%s: degenerate scheme %v", label, s)
				}
				if got := (s.W + s.U) * s.Z; got != budget {
					t.Fatalf("%s: scheme %v uses %d functions, budget %d", label, s, got, budget)
				}
			}
		}
	}
}

// TestSolveOrOutputsFeasible sweeps Program 7-10 instances: sub-budgets
// must sum to the budget and EACH field's sub-scheme must alone satisfy
// its own threshold constraint (the defining property of the OR
// construction).
func TestSolveOrOutputsFeasible(t *testing.T) {
	for _, fam := range pFamilies {
		for _, budget := range []int{8, 20, 64, 200} {
			pr := OrProblem{
				P1: fam.p, P2: func(x float64) float64 { return 1 - x },
				DThr1: 0.3, DThr2: 0.25, Epsilon: 0.2, Budget: budget,
			}
			label := fmt.Sprintf("%s/b=%d", fam.name, budget)
			s, err := SolveOr(pr)
			if err != nil {
				if !errors.Is(err, ErrInfeasible) {
					t.Fatalf("%s: %v", label, err)
				}
				continue
			}
			if got := s.Field1.Budget + s.Field2.Budget; got != budget {
				t.Fatalf("%s: sub-budgets %d+%d != %d", label, s.Field1.Budget, s.Field2.Budget, budget)
			}
			if got := s.Field1.W*s.Field1.Z + s.Field1.WRem; got != s.Field1.Budget {
				t.Fatalf("%s: field1 %v uses %d of %d", label, s.Field1, got, s.Field1.Budget)
			}
			if got := s.Field2.W*s.Field2.Z + s.Field2.WRem; got != s.Field2.Budget {
				t.Fatalf("%s: field2 %v uses %d of %d", label, s.Field2, got, s.Field2.Budget)
			}
			if got := s.Field1.Prob(pr.P1(pr.DThr1)); got < 1-pr.Epsilon-1e-12 {
				t.Fatalf("%s: field1 sub-constraint violated: %v", label, got)
			}
			if got := s.Field2.Prob(pr.P2(pr.DThr2)); got < 1-pr.Epsilon-1e-12 {
				t.Fatalf("%s: field2 sub-constraint violated: %v", label, got)
			}
			// Factorized objective: 1 - (1-O1)(1-O2).
			want := 1 - (1-s.Field1.Objective)*(1-s.Field2.Objective)
			if math.Abs(s.Objective-want) > 1e-12 {
				t.Fatalf("%s: objective %v != factorized %v", label, s.Objective, want)
			}
		}
	}
}

// TestSolveAndNOutputsFeasible sweeps N-way AND instances (Appendix
// C.4): the budget identity sum(w_i)*z == budget and per-field lower
// bounds must hold for every solution, including the relaxed fallback;
// with a generous slack the threshold constraint must hold too.
func TestSolveAndNOutputsFeasible(t *testing.T) {
	specs := []FieldSpec{
		{P: func(x float64) float64 { return 1 - x }, DThr: 0.2},
		{P: func(x float64) float64 { return (1 - x) * (1 - x) }, DThr: 0.15},
		{P: func(x float64) float64 { return math.Cos(x * math.Pi / 2) }, DThr: 0.25},
	}
	for nf := 2; nf <= 3; nf++ {
		for _, budget := range []int{6, 12, 24, 48} {
			for _, eps := range []float64{0.3, 0.6} {
				pr := AndNProblem{Fields: specs[:nf], Epsilon: eps, Budget: budget}
				label := fmt.Sprintf("n=%d/b=%d/e=%g", nf, budget, eps)
				s, err := SolveAndN(pr)
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("%s: %v", label, err)
					}
					continue
				}
				if len(s.W) != nf || s.Z < 1 {
					t.Fatalf("%s: malformed scheme %v", label, s)
				}
				sum := 0
				for i, w := range s.W {
					if w < 1 {
						t.Fatalf("%s: field %d got %d functions", label, i, w)
					}
					sum += w
				}
				if got := sum * s.Z; got != budget {
					t.Fatalf("%s: scheme %v uses %d functions, budget %d", label, s, got, budget)
				}
				pThr := make([]float64, nf)
				for i, f := range pr.Fields {
					pThr[i] = f.P(f.DThr)
				}
				// eps=0.6 with these budgets is comfortably feasible, so
				// the solution cannot be the relaxed fallback and must
				// honor the constraint.
				if eps == 0.6 {
					if got := s.Prob(pThr); got < 1-eps-1e-12 {
						t.Fatalf("%s: threshold constraint violated: %v < %v", label, got, 1-eps)
					}
				}
			}
		}
	}
}

// TestSolveOrNOutputsFeasible sweeps N-way OR instances: sub-budgets
// must not exceed the total and each sub-scheme must satisfy its own
// budget identity; on instances where the DP succeeds, each field's
// threshold constraint holds.
func TestSolveOrNOutputsFeasible(t *testing.T) {
	specs := []FieldSpec{
		{P: func(x float64) float64 { return 1 - x }, DThr: 0.25},
		{P: func(x float64) float64 { return 1 - x }, DThr: 0.3},
		{P: func(x float64) float64 { return (1 - x) * (1 - x) }, DThr: 0.2},
	}
	for nf := 2; nf <= 3; nf++ {
		for _, budget := range []int{16, 64, 192} {
			pr := OrNProblem{Fields: specs[:nf], Epsilon: 0.2, Budget: budget}
			label := fmt.Sprintf("n=%d/b=%d", nf, budget)
			s, err := SolveOrN(pr)
			if err != nil {
				if !errors.Is(err, ErrInfeasible) {
					t.Fatalf("%s: %v", label, err)
				}
				continue
			}
			if len(s.Schemes) != nf {
				t.Fatalf("%s: got %d sub-schemes", label, len(s.Schemes))
			}
			total := 0
			prod := 1.0
			for i, sub := range s.Schemes {
				if got := sub.W*sub.Z + sub.WRem; got != sub.Budget {
					t.Fatalf("%s: field %d scheme %v uses %d of %d", label, i, sub, got, sub.Budget)
				}
				total += sub.Budget
				prod *= 1 - sub.Objective
			}
			if total > budget {
				t.Fatalf("%s: sub-budgets sum to %d > budget %d", label, total, budget)
			}
			if math.Abs(s.Objective-(1-prod)) > 1e-12 {
				t.Fatalf("%s: objective %v != factorized %v", label, s.Objective, 1-prod)
			}
		}
	}
}
