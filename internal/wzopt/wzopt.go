// Package wzopt solves the LSH scheme-design optimization programs of
// the paper: Program 1-3 (Section 5.1) picks the number of hash
// functions per table (w) and the number of tables (z) for a single
// field given a total hash-function budget; Programs 4-6 and 7-10
// (Appendix C) generalize to AND and OR rules over two or more fields.
//
// The objective is always the "area under the collision-probability
// curve" — the probability of two records hashing to the same bucket,
// integrated over all distances — which the solver minimizes subject to
// (a) the budget constraint and (b) the distance-threshold constraint:
// pairs within the threshold must collide with probability >= 1 - eps.
package wzopt

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no (w, z) allocation within the budget
// satisfies the distance-threshold constraint.
var ErrInfeasible = errors.New("wzopt: no feasible scheme within budget")

// gridN is the number of panels used by the trapezoid integrations.
const gridN = 512

// Problem is a single-field instance of Program 1-3.
type Problem struct {
	// P is the base collision probability at normalized distance x
	// (p(x) in the paper; 1-x for both hyperplanes and MinHash).
	P func(x float64) float64
	// DThr is the normalized distance threshold d_thr.
	DThr float64
	// Epsilon is the threshold-constraint slack: collision probability
	// at DThr must be at least 1 - Epsilon.
	Epsilon float64
	// Budget is the total number of hash functions (w*z + remainder).
	Budget int
	// MinW and MinZ are lower bounds enforcing the sequence
	// monotonicity requirement w_i <= w_{i+1}, z_i <= z_{i+1}
	// (Section 4.1). Zero means unconstrained.
	MinW, MinZ int
	// AllowRemainder also considers w values that do not divide the
	// budget, using the remainder-table extension of Section 5.1.
	AllowRemainder bool
}

// Scheme is a solved (w, z) allocation. When WRem > 0 the scheme has an
// extra table with WRem functions (remainder extension), and
// W*Z + WRem == Budget; otherwise W*Z == Budget.
type Scheme struct {
	W, Z, WRem int
	Budget     int
	// Objective is the attained value of the Program 1 integral.
	Objective float64
}

// Tables reports the number of hash tables, including the remainder
// table if present.
func (s Scheme) Tables() int {
	if s.WRem > 0 {
		return s.Z + 1
	}
	return s.Z
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if s.WRem > 0 {
		return fmt.Sprintf("(w=%d,z=%d,+%d)", s.W, s.Z, s.WRem)
	}
	return fmt.Sprintf("(w=%d,z=%d)", s.W, s.Z)
}

// Prob returns the scheme's collision probability for a pair with base
// collision probability p: 1-(1-p^w)^z, times the remainder factor.
func (s Scheme) Prob(p float64) float64 {
	q := math.Pow(1-math.Pow(p, float64(s.W)), float64(s.Z))
	if s.WRem > 0 {
		q *= 1 - math.Pow(p, float64(s.WRem))
	}
	return 1 - q
}

// Solve finds the feasible scheme minimizing the Program 1 objective.
// Per the paper's observation, the objective decreases with w while the
// threshold constraint eventually fails as w grows, so the optimum is
// the largest feasible w; Solve nevertheless scans all candidates,
// which is robust and cheap, and required once MinW/MinZ bounds bite.
func Solve(pr Problem) (Scheme, error) {
	if pr.Budget < 1 {
		return Scheme{}, fmt.Errorf("wzopt: budget %d < 1", pr.Budget)
	}
	if pr.DThr < 0 || pr.DThr > 1 {
		return Scheme{}, fmt.Errorf("wzopt: threshold %g outside [0,1]", pr.DThr)
	}
	// Precompute the base probability grid once; every candidate's
	// objective is a trapezoid sum over pow() of this grid.
	grid := probGrid(pr.P)
	pThr := pr.P(pr.DThr)

	best := Scheme{}
	bestObj := math.Inf(1)
	found := false
	for w := max(1, pr.MinW); w <= pr.Budget; w++ {
		z := pr.Budget / w
		wrem := pr.Budget - w*z
		if wrem != 0 && !pr.AllowRemainder {
			continue
		}
		if z < max(1, pr.MinZ) {
			break // z only shrinks as w grows
		}
		cand := Scheme{W: w, Z: z, WRem: wrem, Budget: pr.Budget}
		if cand.Prob(pThr) < 1-pr.Epsilon {
			continue
		}
		cand.Objective = objective(grid, cand)
		if cand.Objective < bestObj {
			best, bestObj, found = cand, cand.Objective, true
		}
	}
	if !found {
		return Scheme{}, fmt.Errorf("%w: budget=%d dthr=%g eps=%g minW=%d minZ=%d",
			ErrInfeasible, pr.Budget, pr.DThr, pr.Epsilon, pr.MinW, pr.MinZ)
	}
	return best, nil
}

// SolveRelaxed behaves like Solve but, instead of failing when no
// scheme meets the threshold constraint, falls back to the scheme with
// the highest collision probability at the threshold (breaking ties on
// the objective). Early, deliberately-cheap functions in an adaptive
// sequence use this: they are allowed to be inaccurate.
func SolveRelaxed(pr Problem) (Scheme, error) {
	if s, err := Solve(pr); err == nil {
		return s, nil
	} else if !errors.Is(err, ErrInfeasible) {
		return Scheme{}, err
	}
	grid := probGrid(pr.P)
	pThr := pr.P(pr.DThr)
	best := Scheme{}
	bestProb := -1.0
	bestObj := math.Inf(1)
	found := false
	for w := max(1, pr.MinW); w <= pr.Budget; w++ {
		z := pr.Budget / w
		wrem := pr.Budget - w*z
		if wrem != 0 && !pr.AllowRemainder {
			continue
		}
		if z < max(1, pr.MinZ) {
			break
		}
		cand := Scheme{W: w, Z: z, WRem: wrem, Budget: pr.Budget}
		prob := cand.Prob(pThr)
		if prob < bestProb-1e-12 {
			continue
		}
		obj := objective(grid, cand)
		if prob > bestProb+1e-12 || obj < bestObj {
			best, bestProb, bestObj, found = cand, prob, obj, true
		}
	}
	if !found {
		return Scheme{}, fmt.Errorf("%w: budget=%d minW=%d minZ=%d (relaxed)", ErrInfeasible, pr.Budget, pr.MinW, pr.MinZ)
	}
	return best, nil
}

// probGrid samples p(x) at gridN+1 equally spaced points on [0,1].
func probGrid(p func(float64) float64) []float64 {
	g := make([]float64, gridN+1)
	for i := range g {
		g[i] = p(float64(i) / gridN)
	}
	return g
}

// objective evaluates the Program 1 integral for a scheme by composite
// trapezoid over the precomputed base-probability grid.
func objective(grid []float64, s Scheme) float64 {
	sum := 0.0
	for i, p := range grid {
		v := s.Prob(p)
		if i == 0 || i == len(grid)-1 {
			v /= 2
		}
		sum += v
	}
	return sum / gridN
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
