package wzopt

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func linP(x float64) float64 { return 1 - x }

func TestSolveSatisfiesConstraints(t *testing.T) {
	for _, budget := range []int{20, 80, 320, 1280, 2100} {
		s, err := Solve(Problem{P: linP, DThr: 15.0 / 180, Epsilon: 0.001, Budget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if s.W*s.Z+s.WRem != budget {
			t.Errorf("budget %d: w*z+rem = %d", budget, s.W*s.Z+s.WRem)
		}
		if prob := s.Prob(linP(15.0 / 180)); prob < 1-0.001 {
			t.Errorf("budget %d: threshold prob %v < 0.999", budget, prob)
		}
	}
}

func TestSolveIsOptimalAmongFeasible(t *testing.T) {
	pr := Problem{P: linP, DThr: 0.1, Epsilon: 0.001, Budget: 360}
	best, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	pThr := linP(pr.DThr)
	// Exhaustive check over all divisor candidates.
	for w := 1; w <= pr.Budget; w++ {
		if pr.Budget%w != 0 {
			continue
		}
		cand := Scheme{W: w, Z: pr.Budget / w, Budget: pr.Budget}
		if cand.Prob(pThr) < 1-pr.Epsilon {
			continue
		}
		// Compare objectives via a fine common grid.
		if obj := fineObjective(cand); obj < fineObjective(best)-1e-9 {
			t.Errorf("candidate %v (obj %.6f) beats solver's %v (obj %.6f)", cand, obj, best, fineObjective(best))
		}
	}
}

func fineObjective(s Scheme) float64 {
	const n = 4096
	sum := 0.0
	for i := 0; i <= n; i++ {
		v := s.Prob(linP(float64(i) / n))
		if i == 0 || i == n {
			v /= 2
		}
		sum += v
	}
	return sum / n
}

func TestSolveObjectiveDecreasesWithBudgetlessW(t *testing.T) {
	// Within one budget, larger w gives a lower objective (Section
	// 5.1's monotonicity observation).
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8, 16} {
		obj := fineObjective(Scheme{W: w, Z: 16 / w * 10, Budget: 160})
		if obj >= prev {
			t.Errorf("w=%d: objective %v not below previous %v", w, obj, prev)
		}
		prev = obj
	}
}

func TestSolveMinConstraints(t *testing.T) {
	s, err := Solve(Problem{P: linP, DThr: 0.1, Epsilon: 0.001, Budget: 320, MinW: 4, MinZ: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.W < 4 || s.Z < 10 {
		t.Errorf("solution %v violates min constraints", s)
	}
}

func TestSolveRemainder(t *testing.T) {
	// Budget 17 is prime: without remainder only (1,17) and (17,1)
	// exist; with remainder every w is available.
	withRem, err := Solve(Problem{P: linP, DThr: 0.1, Epsilon: 0.01, Budget: 17, AllowRemainder: true})
	if err != nil {
		t.Fatal(err)
	}
	if withRem.W*withRem.Z+withRem.WRem != 17 {
		t.Errorf("remainder accounting wrong: %v", withRem)
	}
	noRem, err := Solve(Problem{P: linP, DThr: 0.1, Epsilon: 0.01, Budget: 17})
	if err != nil {
		t.Fatal(err)
	}
	if noRem.WRem != 0 {
		t.Errorf("divisor-only solve produced a remainder: %v", noRem)
	}
	if fineObjective(withRem) > fineObjective(noRem)+1e-9 {
		t.Errorf("remainder mode should never be worse: %v vs %v", withRem, noRem)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// A huge threshold with strict epsilon and lots of functions per
	// table is infeasible with a small budget.
	_, err := Solve(Problem{P: linP, DThr: 0.9, Epsilon: 1e-9, Budget: 4, MinW: 4})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	// Relaxed solve falls back to a best-effort scheme.
	s, err := SolveRelaxed(Problem{P: linP, DThr: 0.9, Epsilon: 1e-9, Budget: 4, MinW: 4})
	if err != nil {
		t.Fatalf("SolveRelaxed: %v", err)
	}
	if s.W != 4 || s.Z != 1 {
		t.Errorf("relaxed solution %v, want (w=4,z=1)", s)
	}
}

func TestSolveArgumentErrors(t *testing.T) {
	if _, err := Solve(Problem{P: linP, Budget: 0}); err == nil {
		t.Error("accepted zero budget")
	}
	if _, err := Solve(Problem{P: linP, DThr: 2, Budget: 8}); err == nil {
		t.Error("accepted threshold > 1")
	}
}

func TestSchemeProbMatchesFormula(t *testing.T) {
	f := func(wRaw, zRaw uint8, pRaw float64) bool {
		w := int(wRaw%10) + 1
		z := int(zRaw%10) + 1
		p := math.Abs(math.Mod(pRaw, 1))
		s := Scheme{W: w, Z: z}
		want := 1 - math.Pow(1-math.Pow(p, float64(w)), float64(z))
		return math.Abs(s.Prob(p)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTables(t *testing.T) {
	if (Scheme{W: 3, Z: 5}).Tables() != 5 {
		t.Error("Tables without remainder")
	}
	if (Scheme{W: 3, Z: 5, WRem: 2}).Tables() != 6 {
		t.Error("Tables with remainder")
	}
}
