package xhash

import (
	"testing"
)

// FuzzSplitMix64 checks the mixer's contract: pure (deterministic) and,
// as a bijection on 64-bit values, free of fixed collisions between an
// input and its increment (a cheap injectivity probe the bucket-key
// sharding relies on).
func FuzzSplitMix64(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Add(uint64(0x9e3779b97f4a7c15))
	f.Fuzz(func(t *testing.T, x uint64) {
		h := SplitMix64(x)
		if SplitMix64(x) != h {
			t.Fatal("SplitMix64 not deterministic")
		}
		if SplitMix64(x+1) == h {
			t.Fatalf("SplitMix64(%d) == SplitMix64(%d)", x, x+1)
		}
	})
}

// FuzzString checks the string hash: deterministic, consistent with the
// equivalent Combine chain over bytes, and prefix-sensitive.
func FuzzString(f *testing.F) {
	f.Add("")
	f.Add("a")
	f.Add("hello")
	f.Add("\x00\x00")
	f.Add("\xff invalid \xf0\x28 utf8")
	f.Fuzz(func(t *testing.T, s string) {
		h := String(s)
		if String(s) != h {
			t.Fatal("String not deterministic")
		}
		// Appending a byte must change the hash (FNV-1a multiplies by an
		// odd prime after xor, so a single extra step cannot be identity
		// unless the xor'd byte round-trips — catch regressions cheaply).
		if String(s+"x") == h {
			t.Fatalf("String(%q) == String(%q)", s, s+"x")
		}
	})
}

// FuzzCombine checks the hash combiner: deterministic, sensitive to its
// value argument, and not order-insensitive (Combine chains are used as
// bucket keys over hash sequences, where order matters).
func FuzzCombine(f *testing.F) {
	f.Add(uint64(14695981039346656037), uint64(0), uint64(1))
	f.Add(uint64(0), uint64(5), uint64(5))
	f.Add(^uint64(0), uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, h, a, b uint64) {
		if Combine(h, a) != Combine(h, a) {
			t.Fatal("Combine not deterministic")
		}
		if a != b && Combine(h, a) == Combine(h, b) {
			t.Fatalf("Combine(%d, %d) == Combine(%d, %d)", h, a, h, b)
		}
	})
}

// FuzzRNG checks the seeded generator: reproducible streams, Float64 in
// [0,1), Intn in [0,n), and Perm a permutation.
func FuzzRNG(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(42), 10)
	f.Add(^uint64(0), 64)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		n = n&63 + 1 // [1, 64]
		r1, r2 := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if r1.Uint64() != r2.Uint64() {
				t.Fatal("same-seed streams diverge")
			}
		}
		r := NewRNG(seed)
		for i := 0; i < 16; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				t.Fatalf("Float64 = %v outside [0,1)", v)
			}
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
			if v := r.NormFloat64(); v != v {
				t.Fatal("NormFloat64 returned NaN")
			}
		}
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
		if len(p) != n {
			t.Fatalf("Perm(%d) has %d elements", n, len(p))
		}
	})
}
