// Package xhash provides the small deterministic hashing and
// pseudo-random primitives shared by the LSH families, the shinglers,
// and the synthetic dataset generators. Everything here is pure and
// seed-deterministic so that experiments are reproducible run to run.
package xhash

import "math"

// SplitMix64 is the finalizer of the splitmix64 PRNG: a fast, high
// quality 64-bit mixing function. It is used both to derive per-
// function seeds and as the element hash inside MinHash.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Combine folds a new value into a running 64-bit hash (an FNV-1a
// style combiner over 64-bit lanes). Use it to build bucket keys from
// sequences of hash values.
func Combine(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211 // FNV-64 prime
	return h
}

// CombineInit is the seed for Combine chains (the FNV-64 offset basis).
const CombineInit uint64 = 14695981039346656037

// String hashes a string with FNV-1a (64-bit).
func String(s string) uint64 {
	h := CombineInit
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// RNG is a splitmix64 pseudo-random generator. The zero value is a
// valid generator seeded with 0; prefer NewRNG for an explicit seed.
type RNG struct {
	state uint64
	// Gaussian spare value cache for the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xhash: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal value (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	// Draw u in (0, 1] to keep the logarithm finite.
	u := 1 - r.Float64()
	v := r.Float64()
	const tau = 2 * math.Pi
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(tau*v)
	r.hasSpare = true
	return mag * math.Cos(tau*v)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
