package xhash

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 not deterministic")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("SplitMix64(1) == SplitMix64(2)")
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := SplitMix64(0x123456789abcdef)
	for bit := 0; bit < 64; bit += 7 {
		flipped := SplitMix64(0x123456789abcdef ^ (1 << bit))
		diff := bits.OnesCount64(base ^ flipped)
		if diff < 10 || diff > 54 {
			t.Errorf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	a := Combine(Combine(CombineInit, 1), 2)
	b := Combine(Combine(CombineInit, 2), 1)
	if a == b {
		t.Fatal("Combine is order-insensitive")
	}
}

func TestStringHash(t *testing.T) {
	if String("abc") == String("abd") {
		t.Fatal("adjacent strings collide")
	}
	if String("") != CombineInit {
		t.Fatal("empty string should hash to the offset basis")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverge at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(9)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 21 {
		t.Fatalf("shuffle changed elements: %v", xs)
	}
}
