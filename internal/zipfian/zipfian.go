// Package zipfian allocates entity sizes following the Zipf-like
// distributions of the paper's datasets (Section 6.3): entity i gets a
// share proportional to i^(-s), optionally calibrated so the head
// matches target sizes (the PopularImages setting of Section 7.4.2).
package zipfian

import "math"

// Sizes distributes n records over `entities` entities with sizes
// proportional to rank^(-s) (rank starting at 1), each entity getting
// at least one record. The result is sorted descending and sums to n.
// It panics when n < entities or entities < 1.
func Sizes(n, entities int, s float64) []int {
	if entities < 1 {
		panic("zipfian: entities < 1")
	}
	if n < entities {
		panic("zipfian: fewer records than entities")
	}
	weights := make([]float64, entities)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		total += weights[i]
	}
	sizes := make([]int, entities)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(n) * weights[i] / total)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Fix rounding drift: trim from or add to the head, never dropping
	// an entity below one record.
	i := 0
	for assigned > n {
		if sizes[i%entities] > 1 {
			sizes[i%entities]--
			assigned--
		}
		i++
	}
	for assigned < n {
		sizes[assigned%entities]++
		assigned++
	}
	sortDesc(sizes)
	return sizes
}

// SizesWithHead distributes n records over `entities` entities such
// that the largest entity has exactly `top1` records and the rest
// follow rank^(-s) within the remaining mass. This mirrors the
// PopularImages datasets, where the paper reports specific top-1/2/3
// sizes per Zipf exponent (Section 7.4.2). It panics when the head
// cannot fit (top1 + (entities-1) > n) or arguments are degenerate.
func SizesWithHead(n, entities, top1 int, s float64) []int {
	if entities < 2 {
		panic("zipfian: SizesWithHead needs >= 2 entities")
	}
	if top1 < 1 || top1+(entities-1) > n {
		panic("zipfian: head does not fit")
	}
	if n > entities*top1 {
		panic("zipfian: n records cannot fit under the head cap")
	}
	sizes := make([]int, entities)
	sizes[0] = top1
	// Lay out the tail with the same rank law, scaled to the leftover
	// mass. Rank 1 of the tail is entity 2, i.e. weight 2^-s relative
	// to the head's 1, so the head/second ratio still reflects s.
	weights := make([]float64, entities-1)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+2), -s)
		total += weights[i]
	}
	left := n - top1
	assigned := 0
	for i := range weights {
		sz := int(float64(left) * weights[i] / total)
		if sz < 1 {
			sz = 1
		}
		if sz > top1 {
			sz = top1 // keep the head the head
		}
		sizes[i+1] = sz
		assigned += sz
	}
	i := 1
	for assigned > left {
		if sizes[1+(i%(entities-1))] > 1 {
			sizes[1+(i%(entities-1))]--
			assigned--
		}
		i++
	}
	// Grow the tail round-robin, never past the head (feasibility is
	// guaranteed by the n <= entities*top1 check above).
	for assigned < left {
		for j := 1; j < entities && assigned < left; j++ {
			if sizes[j] < top1 {
				sizes[j]++
				assigned++
			}
		}
	}
	sortDesc(sizes)
	return sizes
}

// SizesCalibrated distributes n records over `entities` entities with
// sizes proportional to rank^(-s), where s is solved (by bisection) so
// that the largest entity gets `top1` records. This reproduces the
// PopularImages datasets, whose paper-reported head sizes (top-1 of
// roughly 500/1000/1700 at nominal exponents 1.05/1.1/1.2) pin down
// both the total and the head. It panics when no exponent can satisfy
// the head (top1 out of [n/entities, n-entities+1]).
func SizesCalibrated(n, entities, top1 int) []int {
	if entities < 2 {
		panic("zipfian: SizesCalibrated needs >= 2 entities")
	}
	if top1 < (n+entities-1)/entities || top1 > n-entities+1 {
		panic("zipfian: top1 target out of range")
	}
	// H(s) = sum i^-s decreases in s; head share top1/n = 1/H(s).
	target := float64(n) / float64(top1)
	lo, hi := 0.0, 8.0
	h := func(s float64) float64 {
		t := 0.0
		for i := 1; i <= entities; i++ {
			t += math.Pow(float64(i), -s)
		}
		return t
	}
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if h(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	s := (lo + hi) / 2
	sizes := Sizes(n, entities, s)
	// Nudge the head to the exact target, compensating in the tail.
	delta := top1 - sizes[0]
	sizes[0] = top1
	i := 1
	for delta > 0 { // head grew: shrink tail
		if sizes[1+(i-1)%(entities-1)] > 1 {
			sizes[1+(i-1)%(entities-1)]--
			delta--
		}
		i++
	}
	for delta < 0 { // head shrank: grow tail, capped at the head
		idx := 1 + (i-1)%(entities-1)
		if sizes[idx] < top1 {
			sizes[idx]++
			delta++
		}
		i++
	}
	sortDesc(sizes)
	return sizes
}

func sortDesc(s []int) {
	// Insertion sort: the inputs are nearly sorted already and small.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] < v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Sum is a convenience that totals a size allocation.
func Sum(sizes []int) int {
	t := 0
	for _, s := range sizes {
		t += s
	}
	return t
}
