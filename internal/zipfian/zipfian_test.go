package zipfian

import (
	"testing"
	"testing/quick"
)

func descending(s []int) bool {
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			return false
		}
	}
	return true
}

func TestSizesInvariants(t *testing.T) {
	f := func(nRaw uint16, eRaw uint8, sRaw uint8) bool {
		entities := int(eRaw%50) + 1
		n := entities + int(nRaw%2000)
		s := float64(sRaw%30)/10 + 0.1
		sizes := Sizes(n, entities, s)
		if len(sizes) != entities || Sum(sizes) != n || !descending(sizes) {
			return false
		}
		for _, sz := range sizes {
			if sz < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSizesSkew(t *testing.T) {
	// Higher exponent concentrates more mass in the head.
	low := Sizes(10000, 100, 0.5)
	high := Sizes(10000, 100, 2.0)
	if high[0] <= low[0] {
		t.Fatalf("head at s=2.0 (%d) not larger than at s=0.5 (%d)", high[0], low[0])
	}
}

func TestSizesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no entities":  func() { Sizes(10, 0, 1) },
		"n < entities": func() { Sizes(3, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSizesWithHead(t *testing.T) {
	sizes := SizesWithHead(1900, 190, 230, 1.0)
	if Sum(sizes) != 1900 || len(sizes) != 190 {
		t.Fatalf("sum=%d len=%d", Sum(sizes), len(sizes))
	}
	if sizes[0] != 230 {
		t.Fatalf("head = %d, want 230", sizes[0])
	}
	if !descending(sizes) {
		t.Fatal("not descending")
	}
}

func TestSizesWithHeadClampedTail(t *testing.T) {
	// A small head with a heavy remaining mass forces the tail clamp
	// (no tail entity may exceed the head) and the grow-into-head
	// path.
	sizes := SizesWithHead(1000, 10, 105, 1.0)
	if Sum(sizes) != 1000 || sizes[0] != 105 {
		t.Fatalf("sum=%d head=%d", Sum(sizes), sizes[0])
	}
	for _, s := range sizes[1:] {
		if s > 105 {
			t.Fatalf("tail entity %d exceeds head", s)
		}
	}
}

func TestSizesWithHeadNeedsTwoEntities(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 1 entity")
		}
	}()
	SizesWithHead(10, 1, 5, 1)
}

func TestSizesWithHeadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when head does not fit")
		}
	}()
	SizesWithHead(10, 5, 20, 1)
}

func TestSizesCalibrated(t *testing.T) {
	for _, tc := range []struct{ top1 int }{{500}, {1000}, {1700}} {
		sizes := SizesCalibrated(10000, 500, tc.top1)
		if Sum(sizes) != 10000 {
			t.Fatalf("top1=%d: sum = %d", tc.top1, Sum(sizes))
		}
		if sizes[0] != tc.top1 {
			t.Fatalf("top1 = %d, want %d", sizes[0], tc.top1)
		}
		if !descending(sizes) {
			t.Fatalf("top1=%d: not descending", tc.top1)
		}
		if len(sizes) != 500 {
			t.Fatalf("top1=%d: %d entities", tc.top1, len(sizes))
		}
	}
}

func TestSizesCalibratedHeadGrowsWithTarget(t *testing.T) {
	a := SizesCalibrated(10000, 500, 500)
	b := SizesCalibrated(10000, 500, 1700)
	// Second-largest entity should also be larger under the heavier
	// head (the whole distribution is steeper).
	if b[1] <= a[1] {
		t.Fatalf("second entity: %d (top1=1700) vs %d (top1=500)", b[1], a[1])
	}
}

func TestSizesCalibratedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range head")
		}
	}()
	SizesCalibrated(1000, 500, 1)
}
