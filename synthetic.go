package adalsh

import (
	"github.com/topk-er/adalsh/internal/datasets"
	"github.com/topk-er/adalsh/internal/metrics"
)

// Synthetic dataset builders. These are the workloads of the paper's
// evaluation (Section 6.3), generated synthetically and shipped with
// the library so the experiments are reproducible offline; they are
// also convenient for trying the API on realistic data shapes.

// SyntheticBenchmark pairs a dataset with the matching rule its
// experiments use.
type SyntheticBenchmark = datasets.Benchmark

// SyntheticCora builds the Cora-like multi-field publication dataset
// (scale 1, 2, 4 or 8) with its AND matching rule.
func SyntheticCora(scale int, seed uint64) *SyntheticBenchmark {
	return datasets.Cora(scale, seed)
}

// SyntheticSpotSigs builds the SpotSigs-like near-duplicate article
// dataset, records being spot-signature sets, with a Jaccard rule at
// the given similarity threshold (the paper uses 0.4).
func SyntheticSpotSigs(scale int, simThreshold float64, seed uint64) *SyntheticBenchmark {
	return datasets.SpotSigs(scale, simThreshold, seed)
}

// SyntheticPopularImages builds one of the three image datasets
// (nominal Zipf exponent "1.05", "1.1" or "1.2") with a cosine rule at
// the given angle threshold in degrees (the paper uses 2, 3 and 5).
func SyntheticPopularImages(exponent string, thresholdDegrees float64, seed uint64) *SyntheticBenchmark {
	return datasets.PopularImages(exponent, thresholdDegrees, seed)
}

// Evaluation metrics (Section 6.2), for when ground truth is known.

// PRF is a precision/recall/F1 triple.
type PRF = metrics.PRF

// GoldScore compares a filtering output against the records of the k
// largest ground-truth entities.
func GoldScore(ds *Dataset, output []int32, k int) PRF {
	return metrics.Gold(ds, output, k)
}

// RankedScore computes the mean Average Precision and Recall of the
// output treated as ranked clusters.
func RankedScore(ds *Dataset, clusters [][]int32, k int) (mAP, mAR float64) {
	return metrics.MAPR(ds, clusters, k)
}

// ReductionPercent reports the filtering output size as a percentage
// of the dataset.
func ReductionPercent(ds *Dataset, output []int32) float64 {
	return metrics.Reduction(ds, output)
}
